package main

import (
	"bytes"
	"strings"
	"testing"

	"cdrw"
)

func TestGenPPMEdgeList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "ppm", "-n", "100", "-r", "5", "-p", "0.3", "-q", "0.01"}, &out); err != nil {
		t.Fatal(err)
	}
	g, err := cdrw.ReadEdgeList(&out)
	if err != nil {
		t.Fatalf("output is not a valid edge list: %v", err)
	}
	if g.NumVertices() != 100 {
		t.Fatalf("n = %d", g.NumVertices())
	}
}

func TestGenGnpEdgeList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "gnp", "-n", "50", "-p", "0.5"}, &out); err != nil {
		t.Fatal(err)
	}
	g, err := cdrw.ReadEdgeList(&out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 50 || g.NumEdges() == 0 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestGenDOTColoured(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "ppm", "-n", "20", "-r", "2", "-p", "0.5", "-q", "0.05", "-format", "dot"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.HasPrefix(s, "graph") {
		t.Fatalf("not DOT: %.40s", s)
	}
	if !strings.Contains(s, "color=") {
		t.Fatal("expected colours in PPM DOT output")
	}
}

func TestGenDOTGnpUncoloured(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "gnp", "-n", "20", "-p", "0.3", "-format", "dot"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "color=\"#e6") {
		t.Fatal("Gnp DOT should not be community-coloured")
	}
}

func TestGenDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	args := []string{"-model", "ppm", "-n", "60", "-r", "2", "-p", "0.4", "-q", "0.02", "-seed", "9"}
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different output")
	}
}

func TestGenErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "unknown"}, &out); err == nil {
		t.Fatal("unknown model accepted")
	}
	if err := run([]string{"-format", "png"}, &out); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run([]string{"-model", "ppm", "-n", "10", "-r", "3"}, &out); err == nil {
		t.Fatal("indivisible n/r accepted")
	}
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}
