// Command gengraph samples random graphs from the paper's models and emits
// them as edge lists or Graphviz DOT.
//
//	gengraph -model gnp -n 1024 -p 0.02 > gnp.txt
//	gengraph -model ppm -n 1000 -r 5 -p 0.05 -q 0.001 -format dot > ppm.dot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cdrw"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	var (
		model  = fs.String("model", "ppm", "graph model: gnp or ppm")
		n      = fs.Int("n", 1000, "number of vertices")
		r      = fs.Int("r", 5, "number of blocks (ppm)")
		p      = fs.Float64("p", 0.05, "edge probability (gnp) / intra-block probability (ppm)")
		q      = fs.Float64("q", 0.001, "inter-block probability (ppm)")
		seed   = fs.Uint64("seed", 1, "random seed")
		format = fs.String("format", "edgelist", "output format: edgelist or dot")
		colour = fs.Bool("colour", true, "colour DOT output by ground-truth block (ppm only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		g      *cdrw.Graph
		labels []int
	)
	switch *model {
	case "gnp":
		var err error
		g, err = cdrw.Gnp(*n, *p, cdrw.NewRNG(*seed))
		if err != nil {
			return err
		}
	case "ppm":
		ppm, err := cdrw.NewPPM(cdrw.PPMConfig{N: *n, R: *r, P: *p, Q: *q}, cdrw.NewRNG(*seed))
		if err != nil {
			return err
		}
		g = ppm.Graph
		labels = ppm.Truth
	default:
		return fmt.Errorf("unknown model %q", *model)
	}

	switch *format {
	case "edgelist":
		return cdrw.WriteEdgeList(out, g)
	case "dot":
		opts := cdrw.VizOptions{}
		if *colour && labels != nil {
			opts.Labels = labels
		}
		return cdrw.WriteDOT(out, g, opts)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
