// Command experiments regenerates the paper's figures and complexity
// validations as text tables (or TSV), one experiment per -fig value:
//
//	experiments -fig 2            # Figure 2: Gnp accuracy vs n
//	experiments -fig 3            # Figure 3: two-community PPM sweep
//	experiments -fig 4a -fig 4b   # Figure 4: varying r
//	experiments -fig 1 -out ppm.dot   # Figure 1: DOT rendering
//	experiments -fig rounds       # Theorem 5: CONGEST complexity
//	experiments -fig kmachine     # §III-B: k-machine scaling
//	experiments -fig baselines    # §II: CDRW vs LPA vs averaging
//	experiments -fig sweep        # per-step sweep mode (sparse/dense) + timing
//	experiments -fig all          # everything except fig 1
//
// -quick shrinks graph sizes for a fast smoke run; the default sizes match
// the paper's axes (fig 4b runs at n = 8192 and takes a while). -engine
// swaps the detection backend of the accuracy figures (reference, parallel
// or congest) through the unified Detector surface. -json emits figures as
// JSON documents — the format benchmark tooling ingests, e.g. to attribute
// per-step detection wins to the sweep mode reported by `-fig sweep -json`;
// every JSON record carries the engine name and the resolved option
// fingerprint, so sweep runs from different engines stay distinguishable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cdrw"
	"cdrw/internal/experiments"
)

type figList []string

func (f *figList) String() string { return strings.Join(*f, ",") }
func (f *figList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var figs figList
	fs.Var(&figs, "fig", "figure to regenerate: 1, 2, 3, 4a, 4b, rounds, batch, kmachine, baselines, sweep, "+
		"ablation-{threshold,growth,delta,patience}, ablations, all (repeatable)")
	var (
		quick   = fs.Bool("quick", false, "shrink graph sizes for a fast run")
		trials  = fs.Int("trials", 3, "independent samples per data point")
		seed    = fs.Uint64("seed", 1, "base random seed")
		engine  = fs.String("engine", "reference", "detection engine for the accuracy figures: reference (alias: core), parallel, or congest")
		batch   = fs.Int("congest-batch", 1, "congest engine pool batch size: that many seed walks share communication rounds (<=1 sequential); stamped into every record's option fingerprint")
		tsv     = fs.Bool("tsv", false, "emit TSV instead of aligned tables")
		jsonOut = fs.Bool("json", false, "emit JSON documents instead of tables")
		output  = fs.String("out", "", "write to a file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng, err := cdrw.ParseEngine(*engine)
	if err != nil {
		return err
	}
	if len(figs) == 0 {
		figs = figList{"all"}
	}
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	cfg := experiments.Config{Trials: *trials, Seed: *seed, Quick: *quick, Engine: eng, CongestBatch: *batch}

	expand := map[string][]string{
		"all":       {"2", "3", "4a", "4b", "rounds", "batch", "kmachine", "baselines", "localmix"},
		"ablations": {"ablation-threshold", "ablation-growth", "ablation-delta", "ablation-patience"},
	}
	var todo []string
	for _, f := range figs {
		if more, ok := expand[f]; ok {
			todo = append(todo, more...)
		} else {
			todo = append(todo, f)
		}
	}

	for _, name := range todo {
		var (
			fig *experiments.Figure
			err error
		)
		switch name {
		case "1":
			// DOT output; colours on. Use -out to save it for graphviz.
			if err := experiments.Fig1DOT(out, true, *seed); err != nil {
				return fmt.Errorf("fig 1: %w", err)
			}
			continue
		case "2":
			fig, err = experiments.Fig2(cfg)
		case "3":
			fig, err = experiments.Fig3(cfg)
		case "4a":
			fig, err = experiments.Fig4a(cfg)
		case "4b":
			fig, err = experiments.Fig4b(cfg)
		case "rounds":
			fig, err = experiments.CongestRounds(cfg)
		case "batch":
			fig, err = experiments.CongestBatchRounds(cfg)
		case "kmachine":
			fig, err = experiments.KMachineScaling(cfg)
		case "baselines":
			fig, err = experiments.Baselines(cfg)
		case "ablation-threshold":
			fig, err = experiments.AblationThreshold(cfg)
		case "ablation-growth":
			fig, err = experiments.AblationGrowth(cfg)
		case "ablation-delta":
			fig, err = experiments.AblationDelta(cfg)
		case "ablation-patience":
			fig, err = experiments.AblationPatience(cfg)
		case "localmix":
			fig, err = experiments.LocalMixing(cfg)
		case "sweep":
			fig, err = experiments.SweepTrajectory(cfg)
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
		if err != nil {
			return fmt.Errorf("fig %s: %w", name, err)
		}
		switch {
		case *jsonOut:
			err = fig.WriteJSON(out)
		case *tsv:
			err = fig.WriteTSV(out)
		default:
			err = fig.WriteTable(out)
		}
		if err != nil {
			return fmt.Errorf("render fig %s: %w", name, err)
		}
		fmt.Fprintln(out)
	}
	return nil
}
