package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig1(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "graph ppm {") {
		t.Fatalf("fig 1 is not DOT: %.60s", out.String())
	}
}

func TestRunQuickFigures(t *testing.T) {
	for _, fig := range []string{"2", "rounds", "kmachine", "ablation-patience"} {
		t.Run(fig, func(t *testing.T) {
			var out bytes.Buffer
			err := run([]string{"-fig", fig, "-quick", "-trials", "1"}, &out)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "#") {
				t.Fatalf("no table header in output: %.80s", out.String())
			}
		})
	}
}

func TestRunTSVOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "kmachine", "-quick", "-trials", "1", "-tsv"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 2 || !strings.Contains(lines[0], "\t") {
		t.Fatalf("not TSV: %q", lines[0])
	}
}

func TestRunOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig.txt")
	var devnull bytes.Buffer
	if err := run([]string{"-fig", "kmachine", "-quick", "-trials", "1", "-out", path}, &devnull); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("output file empty")
	}
}

func TestRunSweepTrajectoryJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "sweep", "-quick", "-trials", "1", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Name   string `json:"name"`
		Series []struct {
			Label string    `json:"label"`
			Y     []float64 `json:"y"`
		} `json:"series"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("not JSON: %v\n%.120s", err, out.String())
	}
	if doc.Name != "sweep" {
		t.Fatalf("figure name %q", doc.Name)
	}
	labels := make(map[string]bool)
	for _, s := range doc.Series {
		labels[s.Label] = true
		if len(s.Y) == 0 {
			t.Fatalf("series %q empty", s.Label)
		}
	}
	for _, want := range []string{"support", "sparse-sweep", "step-us", "sweep-us"} {
		if !labels[want] {
			t.Fatalf("missing series %q (got %v)", want, labels)
		}
	}
	// A point-source walk's first step must have swept sparse.
	for _, s := range doc.Series {
		if s.Label == "sparse-sweep" && s.Y[0] != 1 {
			t.Fatalf("first step not attributed to the sparse sweep: %v", s.Y)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "99"}, &out); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestFigListFlag(t *testing.T) {
	var f figList
	if err := f.Set("2"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("3"); err != nil {
		t.Fatal(err)
	}
	if f.String() != "2,3" {
		t.Fatalf("figList = %q", f.String())
	}
}
